package nocout

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Runner executes a Sweep across a bounded worker pool. The zero value is
// ready to use: all CPUs, no progress reporting.
type Runner struct {
	// Workers bounds the number of points measured concurrently;
	// <= 0 means runtime.NumCPU(). Results are identical for any
	// worker count — points are independent and deterministic.
	Workers int

	// Progress, when set, is called after each point completes with the
	// running completion count. Calls are serialized but not ordered by
	// point index.
	Progress func(done, total int, p Point, r Result)
}

// Run measures every point of the sweep and returns the Report, with
// results in sweep order regardless of scheduling. It stops early and
// returns ctx.Err() when the context is cancelled mid-sweep, and returns
// an error naming the first failing point when a point's configuration
// cannot build (an unregistered design, a hierarchy that cannot inhabit
// the fabric) instead of crashing the sweep.
func (rn *Runner) Run(ctx context.Context, sw Sweep) (*Report, error) {
	workers := rn.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > sw.Len() {
		workers = sw.Len()
	}

	// A failing point cancels the remaining work through runCtx; the
	// outer ctx stays authoritative for caller cancellation.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, sw.Len())
	var progressMu sync.Mutex
	done := 0
	var errMu sync.Mutex
	var runErr error
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := sw.Points[i]
				r, err := runPoint(runCtx, p, sw.Quality)
				if err != nil {
					errMu.Lock()
					if runErr == nil {
						runErr = err
					}
					errMu.Unlock()
					cancel()
					return
				}
				if runCtx.Err() != nil {
					return
				}
				results[i] = r
				// Count and report under one lock so Progress sees a
				// monotonically increasing done count.
				progressMu.Lock()
				done++
				if rn.Progress != nil {
					rn.Progress(done, sw.Len(), p, r)
				}
				progressMu.Unlock()
			}
		}()
	}

feed:
	for i := 0; i < sw.Len(); i++ {
		select {
		case next <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	errMu.Lock()
	err := runErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{Title: sw.Title, Quality: sw.Quality, Results: make([]PointResult, sw.Len())}
	for i, p := range sw.Points {
		rep.Results[i] = PointResult{Point: p, Result: results[i]}
	}
	return rep, nil
}

// runPoint measures one sweep point, converting a configuration panic
// (runSeeds re-raises the first worker panic on this goroutine) into an
// error that names the point.
func runPoint(ctx context.Context, p Point, q Quality) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nocout: point %s: %v", p, r)
		}
	}()
	return runSeeds(ctx, p.Config, p.wl, q), nil
}
