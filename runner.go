package nocout

import (
	"context"
	"runtime"
	"sync"
)

// Runner executes a Sweep across a bounded worker pool. The zero value is
// ready to use: all CPUs, no progress reporting.
type Runner struct {
	// Workers bounds the number of points measured concurrently;
	// <= 0 means runtime.NumCPU(). Results are identical for any
	// worker count — points are independent and deterministic.
	Workers int

	// Progress, when set, is called after each point completes with the
	// running completion count. Calls are serialized but not ordered by
	// point index.
	Progress func(done, total int, p Point, r Result)
}

// Run measures every point of the sweep and returns the Report, with
// results in sweep order regardless of scheduling. It stops early and
// returns ctx.Err() when the context is cancelled mid-sweep.
func (rn *Runner) Run(ctx context.Context, sw Sweep) (*Report, error) {
	workers := rn.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > sw.Len() {
		workers = sw.Len()
	}

	results := make([]Result, sw.Len())
	var progressMu sync.Mutex
	done := 0
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := sw.Points[i]
				r := runSeeds(ctx, p.Config, p.wl, sw.Quality)
				if ctx.Err() != nil {
					return
				}
				results[i] = r
				// Count and report under one lock so Progress sees a
				// monotonically increasing done count.
				progressMu.Lock()
				done++
				if rn.Progress != nil {
					rn.Progress(done, sw.Len(), p, r)
				}
				progressMu.Unlock()
			}
		}()
	}

feed:
	for i := 0; i < sw.Len(); i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{Title: sw.Title, Quality: sw.Quality, Results: make([]PointResult, sw.Len())}
	for i, p := range sw.Points {
		rep.Results[i] = PointResult{Point: p, Result: results[i]}
	}
	return rep, nil
}
