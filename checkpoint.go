package nocout

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"nocout/internal/cas"
	"nocout/internal/chip"
	"nocout/internal/sim"
	"nocout/internal/workload"
)

// This file is the warm-state checkpoint cache: sweep points that share a
// measurement prefix — the same system, seed, workload, and warmup length
// — run warmup once, snapshot the chip (chip.Snapshot), and every other
// point of the group restores instead of re-warming. The store is
// content-addressed by PrefixKey with the same golden-pinned key
// discipline as Point.Key, and reuses the campaign cache mechanics
// (atomic writes, cross-process leases, internal/cas) so concurrent
// workers race to produce each prefix exactly once.
//
// Restores are exact, not approximate: a restored chip is cycle-for-cycle
// bit-identical to the donor (the checkpoint conformance suite enforces
// StateHash equality), so a checkpointed sweep's Report is byte-identical
// to the same sweep without checkpoints. That exactness dictates what the
// key covers: anything exercised during warmup — including an open-system
// workload's offered load, whose arrivals drive the cores while they warm
// — is part of the prefix, while pure measurement knobs (the window
// length, the seed *count*, sim-parallelism) are not. Points differing
// only in those knobs share one warm state.

// CheckpointKeyVersion prefixes every PrefixKey; it names the key schema
// and bumps whenever the hashed content, the canonicalization, or the
// checkpoint container semantics change, so stale warm state can never
// alias fresh state.
const CheckpointKeyVersion = "ck1"

// seedStride is the per-seed offset runSeeds derives seed s's
// configuration from: base + s*seedStride.
const seedStride = 7919

// checkpointKey is the canonical content hash of a measurement prefix:
// the fully resolved Config (with the per-seed derived seed already
// applied), the workload's behavioral fingerprint, and the warmup length.
// Everything that shapes the chip's state at the measurement boundary is
// covered; nothing that only shapes the measurement phase is.
func checkpointKey(cfg Config, w workload.Workload, warmup sim.Cycle) (string, error) {
	fp, err := workload.Fingerprint(w)
	if err != nil {
		return "", fmt.Errorf("nocout: checkpoint key: %w", err)
	}
	cj, err := canonicalJSON(cfg)
	if err != nil {
		return "", fmt.Errorf("nocout: checkpoint key: %w", err)
	}
	wj, err := canonicalJSON(warmup)
	if err != nil {
		return "", fmt.Errorf("nocout: checkpoint key: %w", err)
	}
	h := sha256.New()
	// Length-prefixed fields: no concatenation ambiguity between parts.
	for _, part := range [][]byte{[]byte(CheckpointKeyVersion), cj, fp, wj} {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write(part)
	}
	return CheckpointKeyVersion + "-" + hex.EncodeToString(h.Sum(nil)), nil
}

// PrefixKey returns the canonical identity of the warm state seed index
// seedIdx of this point starts measuring from: "ck1-" plus 64 hex digits,
// covering the resolved Config (with the derived seed), the workload
// fingerprint, and q.Warmup. The measurement window, the seed count, and
// sim-parallelism are deliberately outside the key — points differing
// only there share a checkpoint — while anything the warmup executes
// (offered load included) is inside it. Like Point.Key, it errors when
// the point's workload cannot be resolved in this process.
func (p Point) PrefixKey(q Quality, seedIdx int) (string, error) {
	w, err := p.resolveWorkload()
	if err != nil {
		return "", err
	}
	cfg := p.Config
	cfg.Seed += uint64(seedIdx) * seedStride
	return checkpointKey(cfg, w, q.Warmup)
}

// CheckpointStore is the directory-backed warm-state cache: one
// chip.Snapshot container per prefix key, written atomically, plus a
// leases/ subdirectory for cross-process claim files. Safe for concurrent
// use; an in-process per-key lock makes each prefix warm exactly once per
// process, and the lease protocol extends that to cooperating processes.
type CheckpointStore struct {
	dir    string
	leaser cas.Leaser

	// Recompute ignores existing entries — each prefix re-warms and
	// overwrites its checkpoint. Set before use (the -recompute-checkpoints
	// override policy, for entries produced by a code revision under
	// suspicion).
	Recompute bool

	mu    sync.Mutex
	locks map[string]*sync.Mutex

	hits, misses, unkeyed int64 // under mu; see Stats
}

// NewCheckpointStore opens (creating if needed) the checkpoint cache
// rooted at dir.
func NewCheckpointStore(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "leases"), 0o755); err != nil {
		return nil, fmt.Errorf("nocout: checkpoint store: %w", err)
	}
	return &CheckpointStore{
		dir: dir,
		leaser: cas.Leaser{
			Dir:       filepath.Join(dir, "leases"),
			Owner:     cas.DefaultOwner(),
			KeyPrefix: CheckpointKeyVersion + "-",
		},
		locks: map[string]*sync.Mutex{},
	}, nil
}

// Stats returns the store's traffic so far: prefixes restored from cache,
// prefixes warmed (and stored) by this process, and runs that bypassed
// the cache because their workload has no stable fingerprint.
func (s *CheckpointStore) Stats() (hits, misses, unkeyed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.unkeyed
}

func (s *CheckpointStore) path(key string) string { return filepath.Join(s.dir, key+".nock") }

func (s *CheckpointStore) keyLock(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	lk := s.locks[key]
	if lk == nil {
		lk = &sync.Mutex{}
		s.locks[key] = lk
	}
	return lk
}

func (s *CheckpointStore) count(c *int64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// chipFor returns a chip at the measurement boundary for (cfg, w) under
// domains-way sim-parallelism: restored from the cache when the prefix is
// stored, otherwise warmed the ordinary way (PrewarmCaches + Warmup) and
// snapshotted into the cache for every later point of the group. All
// cache failures degrade to the ordinary path — a checkpointed run never
// fails for cache reasons, it just re-warms.
func (s *CheckpointStore) chipFor(cfg Config, w workload.Workload, domains int, warmup sim.Cycle) *chip.Chip {
	key, err := checkpointKey(cfg, w, warmup)
	if err != nil {
		// No stable fingerprint (an unregistered user workload): warm
		// without caching.
		s.count(&s.unkeyed)
		return warmChip(cfg, w, domains, warmup)
	}
	lk := s.keyLock(key)
	lk.Lock()
	defer lk.Unlock()

	if !s.Recompute {
		if c := s.tryRestore(key, cfg, w, domains); c != nil {
			s.count(&s.hits)
			return c
		}
	}
	s.count(&s.misses)

	// Produce the prefix. The lease makes cross-process production
	// single-writer in the common case; losing the race just means this
	// process warms locally (and skips the store — the winner's entry is
	// identical) while the winner publishes.
	release, ok, lerr := s.leaser.Acquire(key)
	if lerr == nil && !ok && !s.Recompute {
		// Another process is warming this prefix right now: give its
		// entry a moment to land before burning the cycles locally.
		if c := s.awaitEntry(key, cfg, w, domains); c != nil {
			s.mu.Lock()
			s.misses--
			s.hits++
			s.mu.Unlock()
			return c
		}
	}
	c := warmChip(cfg, w, domains, warmup)
	if lerr == nil && ok {
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err == nil {
			// Best-effort: an unwritable cache degrades to plain warmup.
			_ = cas.WriteFileAtomic(s.path(key), buf.Bytes())
		}
		release()
	}
	return c
}

// tryRestore restores key into a fresh chip; any failure — missing,
// truncated, corrupt, or mismatched entry — is a miss (the subsequent
// store self-heals the file).
func (s *CheckpointStore) tryRestore(key string, cfg Config, w workload.Workload, domains int) *chip.Chip {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil
	}
	c, err := chip.Restore(cfg, w, domains, bytes.NewReader(data))
	if err != nil {
		return nil
	}
	return c
}

// awaitEntry polls briefly for a prefix another process holds the lease
// on. Bounded well under the lease TTL: if the producer is slow, warming
// locally is always correct.
func (s *CheckpointStore) awaitEntry(key string, cfg Config, w workload.Workload, domains int) *chip.Chip {
	const (
		wait = 10 * time.Second
		poll = 100 * time.Millisecond
	)
	for deadline := time.Now().Add(wait); time.Now().Before(deadline); time.Sleep(poll) {
		if c := s.tryRestore(key, cfg, w, domains); c != nil {
			return c
		}
	}
	return nil
}

// warmChip is the ordinary warm-state construction every measurement uses
// when no checkpoint is available: build, prewarm, warm up.
func warmChip(cfg Config, w workload.Workload, domains int, warmup sim.Cycle) *chip.Chip {
	c := chip.NewSharded(cfg, w, domains)
	c.PrewarmCaches()
	c.Warmup(warmup)
	return c
}

// CheckpointInfo describes one stored checkpoint, for listings.
type CheckpointInfo struct {
	Key   string    `json:"key"`
	Bytes int64     `json:"bytes"`
	Info  chip.Info `json:"info"`
}

// List returns the store's checkpoints in key order, each with its
// decoded container metadata. Non-checkpoint files are skipped; an entry
// that no longer parses is reported with a zero Info rather than hidden,
// so a corrupt cache is visible to `nocout -list-checkpoints`.
func (s *CheckpointStore) List() ([]CheckpointInfo, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []CheckpointInfo
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".nock") {
			continue
		}
		key := strings.TrimSuffix(name, ".nock")
		if !cas.ValidKey(CheckpointKeyVersion+"-", key) {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			return nil, err
		}
		ci := CheckpointInfo{Key: key, Bytes: fi.Size()}
		if f, err := os.Open(filepath.Join(s.dir, name)); err == nil {
			if info, ierr := chip.Inspect(f); ierr == nil {
				ci.Info = info
			}
			f.Close()
		}
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
