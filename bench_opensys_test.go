package nocout

import (
	"testing"

	"nocout/internal/sim"
	"nocout/internal/stats"
	"nocout/opensys"
)

// This file benchmarks the open-system traffic subsystem: raw arrival
// generation per process, latency-histogram record and merge cost, and
// a full Quick-quality open-loop measurement. CI archives the results
// as BENCH_opensys.json so the subsystem's perf trajectory is tracked
// PR over PR alongside the kernel's and workload layer's.

// BenchmarkOpenSysArrival prices arrival-schedule generation for each
// registered process; ns/op is ns per generated request arrival.
func BenchmarkOpenSysArrival(b *testing.B) {
	for _, bc := range []struct{ name, spec string }{
		{"Poisson", "opensys:arrival=poisson"},
		{"MMPP", "opensys:arrival=mmpp"},
		{"Burst", "opensys:arrival=burst"},
	} {
		o, err := opensys.Parse(bc.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bc.name, func(b *testing.B) {
			if got := o.ArrivalTimes(0, 1, b.N); len(got) != b.N {
				b.Fatalf("generated %d arrivals, want %d", len(got), b.N)
			}
		})
	}
}

// BenchmarkOpenSysHistRecord is the per-request cost of the streaming
// latency histogram on the hot completion path.
func BenchmarkOpenSysHistRecord(b *testing.B) {
	rng := sim.NewRNG(1)
	var h stats.LogHist
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(rng.Uint64() % (1 << 20)))
	}
	if h.Count() != int64(b.N) {
		b.Fatalf("count %d, want %d", h.Count(), b.N)
	}
}

// BenchmarkOpenSysHistMerge is the cost of folding one seed's (or one
// core's) histogram into an aggregate, as runSeeds and Chip.Metrics do.
func BenchmarkOpenSysHistMerge(b *testing.B) {
	rng := sim.NewRNG(2)
	var src stats.LogHist
	for i := 0; i < 1<<14; i++ {
		src.Record(int64(rng.Uint64() % (1 << 24)))
	}
	var dst stats.LogHist
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Merge(&src)
	}
	if dst.Count() != int64(b.N)*src.Count() {
		b.Fatalf("merged count %d", dst.Count())
	}
}

// BenchmarkOpenSysQuick is the end-to-end open-loop measurement: a
// Quick-quality 16-core mesh driven by the default Poisson process,
// reporting the simulated tail alongside wall cost.
func BenchmarkOpenSysQuick(b *testing.B) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	simCycles := int64(Quick.Warmup + Quick.Window)
	var res Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Run(cfg, "open-poisson", Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.ReqLatency == nil {
		b.Fatal("open-loop run has no ReqLatency")
	}
	b.ReportMetric(res.AggIPC, "agg-ipc")
	b.ReportMetric(float64(res.ReqLatency.P99), "p99-cy")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simCycles*int64(b.N)), "ns/simcycle")
}
