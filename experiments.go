package nocout

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"nocout/internal/core"
	"nocout/internal/physic"
	"nocout/internal/stats"
	"nocout/internal/workload"
)

// parallel runs n jobs across the available CPUs.
func parallel(n int, job func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Table is a simple text table for experiment reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// ---------------------------------------------------------------------------
// Figure 1: effect of distance (core count) on per-core performance for
// ideal and mesh interconnects, Data Serving and MapReduce-W, 8MB LLC.
// ---------------------------------------------------------------------------

// Figure1Result holds the normalized per-core performance series.
type Figure1Result struct {
	CoreCounts []int
	// Series maps "workload (design)" to per-core performance normalized
	// to the 1-core configuration.
	Series map[string][]float64
	// GapAt64 is 1 - mesh/ideal at 64 cores, averaged over the workloads
	// (the paper reports ~22%).
	GapAt64 float64
}

// Figure1 regenerates Figure 1.
func Figure1(q Quality) Figure1Result {
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	wls := []workload.Params{workload.DataServing, workload.MapReduceW}
	designs := []Design{Ideal, Mesh}

	type job struct {
		w workload.Params
		d Design
		n int
	}
	var jobs []job
	for _, w := range wls {
		for _, d := range designs {
			for _, n := range counts {
				jobs = append(jobs, job{w, d, n})
			}
		}
	}
	results := make([]float64, len(jobs))
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		cfg := DefaultConfig(j.d)
		cfg.Cores = j.n
		w := j.w
		w.MaxCores = j.n // Figure 1 scales the chip, not the workload
		r := runW(cfg, w, q)
		results[i] = r.PerCoreIPC
	})

	out := Figure1Result{CoreCounts: counts, Series: map[string][]float64{}}
	idx := 0
	for _, w := range wls {
		for _, d := range designs {
			key := fmt.Sprintf("%s (%v)", w.Name, d)
			series := make([]float64, len(counts))
			base := results[idx] // 1-core value
			for k := range counts {
				series[k] = results[idx] / base
				idx++
			}
			out.Series[key] = series
		}
	}
	// Average mesh/ideal gap at 64 cores.
	gap := 0.0
	for _, w := range wls {
		ideal := out.Series[fmt.Sprintf("%s (%v)", w.Name, Ideal)]
		mesh := out.Series[fmt.Sprintf("%s (%v)", w.Name, Mesh)]
		gap += 1 - mesh[len(counts)-1]/ideal[len(counts)-1]
	}
	out.GapAt64 = gap / float64(len(wls))
	return out
}

// Table renders the result.
func (r Figure1Result) Table() *Table {
	t := &Table{Title: "Figure 1: per-core performance vs core count (normalized to 1 core)"}
	t.Header = []string{"series"}
	for _, n := range r.CoreCounts {
		t.Header = append(t.Header, fmt.Sprintf("%d", n))
	}
	for _, key := range sortedKeys(r.Series) {
		row := []string{key}
		for _, v := range r.Series[key] {
			row = append(row, f3(v))
		}
		t.AddRow(row...)
	}
	t.AddRow(fmt.Sprintf("mesh-vs-ideal gap at 64 cores: %.0f%% (paper: ~22%%)", r.GapAt64*100))
	return t
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ---------------------------------------------------------------------------
// Figure 4: percentage of LLC accesses triggering a snoop.
// ---------------------------------------------------------------------------

// Figure4Result maps workload name to snoop percentage.
type Figure4Result struct {
	Workloads []string
	SnoopPct  []float64
	MeanPct   float64
}

// Figure4 regenerates Figure 4 on the 64-core mesh.
func Figure4(q Quality) Figure4Result {
	wls := workload.All()
	out := Figure4Result{}
	pct := make([]float64, len(wls))
	parallel(len(wls), func(i int) {
		r := runW(DefaultConfig(Mesh), wls[i], q)
		pct[i] = r.SnoopRate * 100
	})
	sum := 0.0
	for i, w := range wls {
		out.Workloads = append(out.Workloads, w.Name)
		out.SnoopPct = append(out.SnoopPct, pct[i])
		sum += pct[i]
	}
	out.MeanPct = sum / float64(len(wls))
	return out
}

// Table renders the result.
func (r Figure4Result) Table() *Table {
	t := &Table{Title: "Figure 4: % of LLC accesses triggering a snoop (paper mean ~2%)",
		Header: []string{"workload", "snoop %"}}
	for i, w := range r.Workloads {
		t.AddRow(w, f2(r.SnoopPct[i]))
	}
	t.AddRow("Mean", f2(r.MeanPct))
	return t
}

// ---------------------------------------------------------------------------
// Figure 7: system performance normalized to mesh, fixed 128-bit links.
// ---------------------------------------------------------------------------

// Figure7Result holds normalized performance per workload and design.
type Figure7Result struct {
	Workloads []string
	// Normalized[design][i] is workload i's performance over mesh.
	Normalized map[string][]float64
	GMean      map[string]float64
}

// Figure7 regenerates Figure 7 (and its designs are reused by Figure 9).
func Figure7(q Quality) Figure7Result {
	return figurePerf(q, map[string]Config{
		"Mesh":                DefaultConfig(Mesh),
		"Flattened Butterfly": DefaultConfig(FBfly),
		"NOC-Out":             DefaultConfig(NOCOut),
	})
}

// figurePerf measures a set of configurations over the suite, normalizing
// to the configuration named "Mesh".
func figurePerf(q Quality, cfgs map[string]Config) Figure7Result {
	wls := workload.All()
	names := make([]string, 0, len(cfgs))
	for n := range cfgs {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	type job struct{ w, d int }
	var jobs []job
	for wi := range wls {
		for di := range names {
			jobs = append(jobs, job{wi, di})
		}
	}
	raw := make([]float64, len(jobs))
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		raw[i] = runW(cfgs[names[j.d]], wls[j.w], q).AggIPC
	})
	ipc := map[string][]float64{}
	for i, j := range jobs {
		name := names[j.d]
		if ipc[name] == nil {
			ipc[name] = make([]float64, len(wls))
		}
		ipc[name][j.w] = raw[i]
	}
	out := Figure7Result{Normalized: map[string][]float64{}, GMean: map[string]float64{}}
	for _, w := range wls {
		out.Workloads = append(out.Workloads, w.Name)
	}
	base := ipc["Mesh"]
	for _, name := range names {
		norm := stats.NormalizeTo(ipc[name], base)
		out.Normalized[name] = norm
		out.GMean[name] = stats.GeoMean(norm)
	}
	return out
}

// Table renders the result.
func (r Figure7Result) Table() *Table {
	return r.tableTitled("Figure 7: system performance normalized to mesh (128-bit links)")
}

func (r Figure7Result) tableTitled(title string) *Table {
	t := &Table{Title: title, Header: []string{"workload"}}
	names := sortedKeys(r.Normalized)
	t.Header = append(t.Header, names...)
	for i, w := range r.Workloads {
		row := []string{w}
		for _, n := range names {
			row = append(row, f3(r.Normalized[n][i]))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	for _, n := range names {
		row = append(row, f3(r.GMean[n]))
	}
	t.AddRow(row...)
	return t
}

// ---------------------------------------------------------------------------
// Figure 8: NoC area breakdown.
// ---------------------------------------------------------------------------

// Figure8Result holds the area breakdowns.
type Figure8Result struct {
	Designs    []string
	Breakdowns []physic.Breakdown
}

// Figure8 regenerates Figure 8 from the area model (no simulation needed).
func Figure8() Figure8Result {
	return Figure8Result{
		Designs: []string{"Mesh", "Flattened Butterfly", "NOC-Out"},
		Breakdowns: []physic.Breakdown{
			physic.MeshArea(64, 8, 128),
			physic.FBflyArea(64, 8, 128),
			physic.NOCOutTotalArea(core.DefaultConfig(), 128),
		},
	}
}

// Table renders the result.
func (r Figure8Result) Table() *Table {
	t := &Table{Title: "Figure 8: NoC area breakdown, mm² (paper: mesh ~3.5, fbfly ~23, NOC-Out ~2.5)",
		Header: []string{"design", "links", "buffers", "crossbar", "total"}}
	for i, d := range r.Designs {
		b := r.Breakdowns[i]
		t.AddRow(d, f2(b.Links), f2(b.Buffers), f2(b.Crossbar), f2(b.Total()))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 9: performance under a fixed NoC area budget (NOC-Out's area).
// ---------------------------------------------------------------------------

// Figure9Result extends the Figure 7 shape with the solved link widths.
type Figure9Result struct {
	Figure7Result
	BudgetMM2  float64
	MeshWidth  int
	FBflyWidth int
}

// Figure9 regenerates Figure 9: mesh and fbfly links are narrowed until
// their area matches NOC-Out's, then the suite is re-run.
func Figure9(q Quality) Figure9Result {
	budget := physic.NOCOutTotalArea(core.DefaultConfig(), 128).Total()
	wm, _ := physic.SolveWidthForArea("mesh", budget)
	wf, _ := physic.SolveWidthForArea("fbfly", budget)

	mesh := DefaultConfig(Mesh)
	mesh.LinkBits = wm
	fb := DefaultConfig(FBfly)
	fb.LinkBits = wf
	no := DefaultConfig(NOCOut)

	perf := figurePerf(q, map[string]Config{
		"Mesh": mesh, "Flattened Butterfly": fb, "NOC-Out": no,
	})
	return Figure9Result{Figure7Result: perf, BudgetMM2: budget, MeshWidth: wm, FBflyWidth: wf}
}

// Table renders the result.
func (r Figure9Result) Table() *Table {
	t := r.tableTitled(fmt.Sprintf(
		"Figure 9: performance normalized to mesh at a fixed %.1f mm² NoC budget (mesh %d-bit, fbfly %d-bit links)",
		r.BudgetMM2, r.MeshWidth, r.FBflyWidth))
	return t
}

// ---------------------------------------------------------------------------
// §6.4: NoC power.
// ---------------------------------------------------------------------------

// PowerResult holds average NoC power per design across the suite.
type PowerResult struct {
	Designs []string
	Power   []physic.Power
}

// PowerStudy regenerates the §6.4 power analysis.
func PowerStudy(q Quality) PowerResult {
	designs := []Design{Mesh, FBfly, NOCOut}
	wls := workload.All()
	type job struct{ d, w int }
	var jobs []job
	for di := range designs {
		for wi := range wls {
			jobs = append(jobs, job{di, wi})
		}
	}
	acc := make([]physic.Power, len(designs))
	var mu sync.Mutex
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		r := runW(DefaultConfig(designs[j.d]), wls[j.w], q)
		mu.Lock()
		acc[j.d].LinkW += r.NoCPower.LinkW / float64(len(wls))
		acc[j.d].RouterW += r.NoCPower.RouterW / float64(len(wls))
		acc[j.d].LeakageW += r.NoCPower.LeakageW / float64(len(wls))
		mu.Unlock()
	})
	out := PowerResult{}
	for di, d := range designs {
		out.Designs = append(out.Designs, d.String())
		out.Power = append(out.Power, acc[di])
	}
	return out
}

// Table renders the result.
func (r PowerResult) Table() *Table {
	t := &Table{Title: "§6.4: average NoC power, W (paper: mesh 1.8, fbfly 1.6, NOC-Out 1.3)",
		Header: []string{"design", "links", "routers", "leakage", "total"}}
	for i, d := range r.Designs {
		p := r.Power[i]
		t.AddRow(d, f2(p.LinkW), f2(p.RouterW), f2(p.LeakageW), f2(p.Total()))
	}
	return t
}

// ---------------------------------------------------------------------------
// §4.3 ablation: LLC banking.
// ---------------------------------------------------------------------------

// BankingResult reports NOC-Out performance vs banks per LLC tile.
type BankingResult struct {
	BanksPerTile []int
	CoresPerBank []int
	Normalized   []float64 // to the most-banked configuration
	Workload     string
}

// BankingAblation sweeps NOC-Out's internal LLC banking (§4.3: four cores
// per bank performs within ~2% of one bank per core).
func BankingAblation(q Quality) BankingResult {
	banks := []int{1, 2, 4, 8}
	w := workload.DataServing // the most bank-sensitive workload (§6.1)
	perf := make([]float64, len(banks))
	parallel(len(banks), func(i int) {
		cfg := DefaultConfig(NOCOut)
		cfg.BanksPerLLCTile = banks[i]
		perf[i] = runW(cfg, w, q).AggIPC
	})
	out := BankingResult{Workload: w.Name}
	base := perf[len(perf)-1]
	for i, b := range banks {
		out.BanksPerTile = append(out.BanksPerTile, b)
		out.CoresPerBank = append(out.CoresPerBank, 64/(8*b))
		out.Normalized = append(out.Normalized, perf[i]/base)
	}
	return out
}

// Table renders the result.
func (r BankingResult) Table() *Table {
	t := &Table{Title: fmt.Sprintf("§4.3: LLC banking ablation on %s (paper: 4 cores/bank within 2%% of 1:1)", r.Workload),
		Header: []string{"banks/tile", "cores/bank", "perf vs most-banked"}}
	for i := range r.BanksPerTile {
		t.AddRow(fmt.Sprintf("%d", r.BanksPerTile[i]),
			fmt.Sprintf("%d", r.CoresPerBank[i]), f3(r.Normalized[i]))
	}
	return t
}

// ---------------------------------------------------------------------------
// §7.1 ablation: scaling NOC-Out (concentration, express links).
// ---------------------------------------------------------------------------

// ScalingResult compares 128-core NOC-Out variants.
type ScalingResult struct {
	Variants   []string
	PerCoreIPC []float64
	Workload   string
}

// ScalingAblation regenerates the §7.1 discussion: a 128-core chip via
// concentration, via taller columns, and via taller columns with express
// links.
func ScalingAblation(q Quality) ScalingResult {
	w := workload.MapReduceC
	type variant struct {
		name string
		org  NOCOutOrg
	}
	variants := []variant{
		{"64-core baseline", core.DefaultConfig()},
		{"128-core, concentration 2", NOCOutOrg{Columns: 8, RowsPerSide: 4, Concentration: 2}},
		{"128-core, 8 rows/side", NOCOutOrg{Columns: 8, RowsPerSide: 8}},
		{"128-core, 8 rows/side + express", NOCOutOrg{Columns: 8, RowsPerSide: 8, ExpressFrom: 4}},
	}
	perf := make([]float64, len(variants))
	parallel(len(variants), func(i int) {
		org := variants[i].org.WithDefaults()
		cfg := DefaultConfig(NOCOut)
		cfg.NOCOut = org
		cfg.Cores = org.NumCores()
		// A balanced future chip scales off-die bandwidth with cores
		// (otherwise DRAM saturation masks the interconnect story).
		cfg.MemChannels = 4 * cfg.Cores / 64
		wl := w
		wl.MaxCores = cfg.Cores // §7.1 assumes software that scales with the chip
		perf[i] = runW(cfg, wl, q).PerCoreIPC
	})
	out := ScalingResult{Workload: w.Name}
	for i, v := range variants {
		out.Variants = append(out.Variants, v.name)
		out.PerCoreIPC = append(out.PerCoreIPC, perf[i])
	}
	return out
}

// Table renders the result.
func (r ScalingResult) Table() *Table {
	t := &Table{Title: fmt.Sprintf("§7.1: NOC-Out scaling ablation on %s", r.Workload),
		Header: []string{"variant", "per-core IPC"}}
	for i := range r.Variants {
		t.AddRow(r.Variants[i], f3(r.PerCoreIPC[i]))
	}
	return t
}

// Table1 returns the evaluation parameters (Table 1) as a table.
func Table1() *Table {
	cfg := DefaultConfig(NOCOut)
	t := &Table{Title: "Table 1: evaluation parameters", Header: []string{"parameter", "value"}}
	t.AddRow("Technology", "32nm, 0.9V, 2GHz")
	t.AddRow("CMP features", fmt.Sprintf("%d cores, %dMB NUCA LLC, %d DDR3-1667 memory channels",
		cfg.Cores, cfg.LLCMB, cfg.MemChannels))
	t.AddRow("Core", "ARM Cortex-A15-like: 3-way OoO, 64-entry ROB, 16-entry LSQ")
	t.AddRow("L1 caches", "32KB L1-I + 32KB L1-D per core, 64B lines")
	t.AddRow("Mesh", "5 ports, 3 VCs/port, 5 flits/VC, 2-stage speculative pipeline, 1-cycle links")
	t.AddRow("Flattened Butterfly", "15 ports, 3 VCs/port, 3-stage pipeline, links up to 2 tiles/cycle")
	t.AddRow("NOC-Out", "reduction/dispersion trees: 2 ports, 2 VCs/port, 1 cycle/hop; LLC: 1-D flattened butterfly")
	t.AddRow("Link width", fmt.Sprintf("%d bits", cfg.LinkBits))
	return t
}
