package nocout

import (
	"context"
	"fmt"

	"nocout/internal/core"
	"nocout/internal/physic"
	"nocout/internal/stats"
	"nocout/internal/workload"
)

// This file regenerates the paper's evaluation. Every entry point is a
// thin declarative sweep spec over the experiment engine (experiment.go,
// runner.go): it names variants, workloads, and core counts; the engine
// owns expansion, fan-out, and result bookkeeping. The exported
// signatures predate the engine and are kept as compatibility wrappers.

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// mustRun executes a figure's sweep spec. The built-in specs use only
// compile-time-valid workload names and an uncancellable context, so a
// failure is a programming error.
func mustRun(e *Experiment) *Report {
	rep, err := e.Run(context.Background())
	if err != nil {
		panic(err)
	}
	return rep
}

// paperSuite names the paper's six builtin workloads. The figures pin
// this set explicitly so RegisterWorkload-ed additions never shift the
// regenerated paper numbers.
func paperSuite() []string {
	names := make([]string, 0, 6)
	for _, w := range workload.Builtin() {
		names = append(names, w.Name)
	}
	return names
}

// ---------------------------------------------------------------------------
// Figure 1: effect of distance (core count) on per-core performance for
// ideal and mesh interconnects, Data Serving and MapReduce-W, 8MB LLC.
// ---------------------------------------------------------------------------

// Figure1Result holds the normalized per-core performance series.
type Figure1Result struct {
	CoreCounts []int
	// Series maps "workload (design)" to per-core performance normalized
	// to the 1-core configuration.
	Series map[string][]float64
	// GapAt64 is 1 - mesh/ideal at 64 cores, averaged over the workloads
	// (the paper reports ~22%).
	GapAt64 float64
}

// Figure1 regenerates Figure 1.
func Figure1(q Quality) Figure1Result {
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	wls := []string{workload.DataServing.Name, workload.MapReduceW.Name}
	designs := []Design{Ideal, Mesh}

	rep := mustRun(NewExperiment(
		WithTitle("Figure 1: per-core performance vs core count"),
		WithDesigns(designs...),
		WithWorkloads(wls...),
		WithCoreCounts(counts...),
		WithUnlimitedCores(), // Figure 1 scales the chip, not the workload
		WithQuality(q),
	))

	out := Figure1Result{CoreCounts: counts, Series: map[string][]float64{}}
	for _, w := range wls {
		for _, d := range designs {
			series := make([]float64, len(counts))
			base := rep.MustGet(d.String(), w, counts[0]).PerCoreIPC
			for k, n := range counts {
				series[k] = rep.MustGet(d.String(), w, n).PerCoreIPC / base
			}
			out.Series[fmt.Sprintf("%s (%v)", w, d)] = series
		}
	}
	// Average mesh/ideal gap at 64 cores.
	gap := 0.0
	for _, w := range wls {
		ideal := out.Series[fmt.Sprintf("%s (%v)", w, Ideal)]
		mesh := out.Series[fmt.Sprintf("%s (%v)", w, Mesh)]
		gap += 1 - mesh[len(counts)-1]/ideal[len(counts)-1]
	}
	out.GapAt64 = gap / float64(len(wls))
	return out
}

// Table renders the result.
func (r Figure1Result) Table() *Table {
	t := &Table{Title: "Figure 1: per-core performance vs core count (normalized to 1 core)"}
	t.Header = []string{"series"}
	for _, n := range r.CoreCounts {
		t.Header = append(t.Header, fmt.Sprintf("%d", n))
	}
	for _, key := range sortedKeys(r.Series) {
		row := []string{key}
		for _, v := range r.Series[key] {
			row = append(row, f3(v))
		}
		t.AddRow(row...)
	}
	t.AddRow(fmt.Sprintf("mesh-vs-ideal gap at 64 cores: %.0f%% (paper: ~22%%)", r.GapAt64*100))
	return t
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ---------------------------------------------------------------------------
// Figure 4: percentage of LLC accesses triggering a snoop.
// ---------------------------------------------------------------------------

// Figure4Result maps workload name to snoop percentage.
type Figure4Result struct {
	Workloads []string
	SnoopPct  []float64
	MeanPct   float64
}

// Figure4 regenerates Figure 4 on the 64-core mesh.
func Figure4(q Quality) Figure4Result {
	rep := mustRun(NewExperiment(
		WithTitle("Figure 4: snoop rate on the 64-core mesh"),
		WithDesigns(Mesh),
		WithWorkloads(paperSuite()...),
		WithQuality(q),
	))
	out := Figure4Result{}
	sum := 0.0
	for _, w := range workload.Builtin() {
		pct := rep.MustGet(Mesh.String(), w.Name, 0).SnoopRate * 100
		out.Workloads = append(out.Workloads, w.Name)
		out.SnoopPct = append(out.SnoopPct, pct)
		sum += pct
	}
	out.MeanPct = sum / float64(len(out.Workloads))
	return out
}

// Table renders the result.
func (r Figure4Result) Table() *Table {
	t := &Table{Title: "Figure 4: % of LLC accesses triggering a snoop (paper mean ~2%)",
		Header: []string{"workload", "snoop %"}}
	for i, w := range r.Workloads {
		t.AddRow(w, f2(r.SnoopPct[i]))
	}
	t.AddRow("Mean", f2(r.MeanPct))
	return t
}

// ---------------------------------------------------------------------------
// Figure 7: system performance normalized to mesh, fixed 128-bit links.
// ---------------------------------------------------------------------------

// Figure7Result holds normalized performance per workload and design.
type Figure7Result struct {
	Workloads []string
	// Normalized[design][i] is workload i's performance over mesh.
	Normalized map[string][]float64
	GMean      map[string]float64
}

// Figure7 regenerates Figure 7 (and its designs are reused by Figure 9).
func Figure7(q Quality) Figure7Result {
	return figurePerf(q, "Figure 7: performance at fixed 128-bit links", []Variant{
		{Name: "Mesh", Config: DefaultConfig(Mesh)},
		{Name: "Flattened Butterfly", Config: DefaultConfig(FBfly)},
		{Name: "NOC-Out", Config: DefaultConfig(NOCOut)},
	})
}

// figurePerf sweeps a set of variants over the full suite, normalizing
// each workload's throughput to the variant named "Mesh".
func figurePerf(q Quality, title string, variants []Variant) Figure7Result {
	opts := []Option{WithTitle(title), WithWorkloads(paperSuite()...), WithQuality(q)}
	for _, v := range variants {
		opts = append(opts, WithVariant(v.Name, v.Config))
	}
	rep := mustRun(NewExperiment(opts...))

	wls := workload.Builtin()
	ipc := map[string][]float64{}
	for _, v := range variants {
		series := make([]float64, len(wls))
		for i, w := range wls {
			series[i] = rep.MustGet(v.Name, w.Name, 0).AggIPC
		}
		ipc[v.Name] = series
	}
	out := Figure7Result{Normalized: map[string][]float64{}, GMean: map[string]float64{}}
	for _, w := range wls {
		out.Workloads = append(out.Workloads, w.Name)
	}
	base := ipc["Mesh"]
	for name, series := range ipc {
		norm := stats.NormalizeTo(series, base)
		out.Normalized[name] = norm
		out.GMean[name] = stats.GeoMean(norm)
	}
	return out
}

// Table renders the result.
func (r Figure7Result) Table() *Table {
	return r.tableTitled("Figure 7: system performance normalized to mesh (128-bit links)")
}

func (r Figure7Result) tableTitled(title string) *Table {
	t := &Table{Title: title, Header: []string{"workload"}}
	names := sortedKeys(r.Normalized)
	t.Header = append(t.Header, names...)
	for i, w := range r.Workloads {
		row := []string{w}
		for _, n := range names {
			row = append(row, f3(r.Normalized[n][i]))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	for _, n := range names {
		row = append(row, f3(r.GMean[n]))
	}
	t.AddRow(row...)
	return t
}

// ---------------------------------------------------------------------------
// Figure 8: NoC area breakdown.
// ---------------------------------------------------------------------------

// Figure8Result holds the area breakdowns.
type Figure8Result struct {
	Designs    []string
	Breakdowns []physic.Breakdown
}

// Figure8 regenerates Figure 8 from the area model (no simulation needed).
func Figure8() Figure8Result {
	return Figure8Result{
		Designs: []string{"Mesh", "Flattened Butterfly", "NOC-Out"},
		Breakdowns: []physic.Breakdown{
			physic.MeshArea(64, 8, 128),
			physic.FBflyArea(64, 8, 128),
			physic.NOCOutTotalArea(core.DefaultConfig(), 128),
		},
	}
}

// Table renders the result.
func (r Figure8Result) Table() *Table {
	t := &Table{Title: "Figure 8: NoC area breakdown, mm² (paper: mesh ~3.5, fbfly ~23, NOC-Out ~2.5)",
		Header: []string{"design", "links", "buffers", "crossbar", "total"}}
	for i, d := range r.Designs {
		b := r.Breakdowns[i]
		t.AddRow(d, f2(b.Links), f2(b.Buffers), f2(b.Crossbar), f2(b.Total()))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 9: performance under a fixed NoC area budget (NOC-Out's area).
// ---------------------------------------------------------------------------

// Figure9Result extends the Figure 7 shape with the solved link widths.
type Figure9Result struct {
	Figure7Result
	BudgetMM2  float64
	MeshWidth  int
	FBflyWidth int
}

// Figure9 regenerates Figure 9: mesh and fbfly links are narrowed until
// their area matches NOC-Out's, then the suite is re-run.
func Figure9(q Quality) Figure9Result {
	budget := physic.NOCOutTotalArea(core.DefaultConfig(), 128).Total()
	wm, _ := SolveWidthForArea(Mesh, budget)
	wf, _ := SolveWidthForArea(FBfly, budget)

	mesh := DefaultConfig(Mesh)
	mesh.LinkBits = wm
	fb := DefaultConfig(FBfly)
	fb.LinkBits = wf

	perf := figurePerf(q, "Figure 9: performance at a fixed NoC area budget", []Variant{
		{Name: "Mesh", Config: mesh},
		{Name: "Flattened Butterfly", Config: fb},
		{Name: "NOC-Out", Config: DefaultConfig(NOCOut)},
	})
	return Figure9Result{Figure7Result: perf, BudgetMM2: budget, MeshWidth: wm, FBflyWidth: wf}
}

// Table renders the result.
func (r Figure9Result) Table() *Table {
	t := r.tableTitled(fmt.Sprintf(
		"Figure 9: performance normalized to mesh at a fixed %.1f mm² NoC budget (mesh %d-bit, fbfly %d-bit links)",
		r.BudgetMM2, r.MeshWidth, r.FBflyWidth))
	return t
}

// ---------------------------------------------------------------------------
// §6.4: NoC power.
// ---------------------------------------------------------------------------

// PowerResult holds average NoC power per design across the suite.
type PowerResult struct {
	Designs []string
	Power   []physic.Power
}

// PowerStudy regenerates the §6.4 power analysis.
func PowerStudy(q Quality) PowerResult {
	designs := []Design{Mesh, FBfly, NOCOut}
	rep := mustRun(NewExperiment(
		WithTitle("§6.4: NoC power across the suite"),
		WithDesigns(designs...),
		WithWorkloads(paperSuite()...),
		WithQuality(q),
	))
	wls := workload.Builtin()
	out := PowerResult{}
	for _, d := range designs {
		var acc physic.Power
		for _, w := range wls {
			p := rep.MustGet(d.String(), w.Name, 0).NoCPower
			acc.LinkW += p.LinkW / float64(len(wls))
			acc.RouterW += p.RouterW / float64(len(wls))
			acc.LeakageW += p.LeakageW / float64(len(wls))
		}
		out.Designs = append(out.Designs, d.String())
		out.Power = append(out.Power, acc)
	}
	return out
}

// Table renders the result.
func (r PowerResult) Table() *Table {
	t := &Table{Title: "§6.4: average NoC power, W (paper: mesh 1.8, fbfly 1.6, NOC-Out 1.3)",
		Header: []string{"design", "links", "routers", "leakage", "total"}}
	for i, d := range r.Designs {
		p := r.Power[i]
		t.AddRow(d, f2(p.LinkW), f2(p.RouterW), f2(p.LeakageW), f2(p.Total()))
	}
	return t
}

// ---------------------------------------------------------------------------
// §4.3 ablation: LLC banking.
// ---------------------------------------------------------------------------

// BankingResult reports NOC-Out performance vs banks per LLC tile.
type BankingResult struct {
	BanksPerTile []int
	CoresPerBank []int
	Normalized   []float64 // to the most-banked configuration
	Workload     string
}

// BankingAblation sweeps NOC-Out's internal LLC banking (§4.3: four cores
// per bank performs within ~2% of one bank per core).
func BankingAblation(q Quality) BankingResult {
	banks := []int{1, 2, 4, 8}
	w := workload.DataServing // the most bank-sensitive workload (§6.1)
	opts := []Option{
		WithTitle("§4.3: LLC banking ablation"),
		WithWorkloads(w.Name),
		WithQuality(q),
	}
	name := func(b int) string { return fmt.Sprintf("%d banks/tile", b) }
	for _, b := range banks {
		cfg := DefaultConfig(NOCOut)
		cfg.BanksPerLLCTile = b
		opts = append(opts, WithVariant(name(b), cfg))
	}
	rep := mustRun(NewExperiment(opts...))

	out := BankingResult{Workload: w.Name}
	base := rep.MustGet(name(banks[len(banks)-1]), w.Name, 0).AggIPC
	for _, b := range banks {
		out.BanksPerTile = append(out.BanksPerTile, b)
		out.CoresPerBank = append(out.CoresPerBank, 64/(8*b))
		out.Normalized = append(out.Normalized, rep.MustGet(name(b), w.Name, 0).AggIPC/base)
	}
	return out
}

// Table renders the result.
func (r BankingResult) Table() *Table {
	t := &Table{Title: fmt.Sprintf("§4.3: LLC banking ablation on %s (paper: 4 cores/bank within 2%% of 1:1)", r.Workload),
		Header: []string{"banks/tile", "cores/bank", "perf vs most-banked"}}
	for i := range r.BanksPerTile {
		t.AddRow(fmt.Sprintf("%d", r.BanksPerTile[i]),
			fmt.Sprintf("%d", r.CoresPerBank[i]), f3(r.Normalized[i]))
	}
	return t
}

// ---------------------------------------------------------------------------
// §7.1 ablation: scaling NOC-Out (concentration, express links).
// ---------------------------------------------------------------------------

// ScalingResult compares 128-core NOC-Out variants.
type ScalingResult struct {
	Variants   []string
	PerCoreIPC []float64
	Workload   string
}

// ScalingAblation regenerates the §7.1 discussion: a 128-core chip via
// concentration, via taller columns, and via taller columns with express
// links.
func ScalingAblation(q Quality) ScalingResult {
	w := workload.MapReduceC
	type variant struct {
		name string
		org  NOCOutOrg
	}
	variants := []variant{
		{"64-core baseline", core.DefaultConfig()},
		{"128-core, concentration 2", NOCOutOrg{Columns: 8, RowsPerSide: 4, Concentration: 2}},
		{"128-core, 8 rows/side", NOCOutOrg{Columns: 8, RowsPerSide: 8}},
		{"128-core, 8 rows/side + express", NOCOutOrg{Columns: 8, RowsPerSide: 8, ExpressFrom: 4}},
	}
	opts := []Option{
		WithTitle("§7.1: NOC-Out scaling ablation"),
		WithWorkloads(w.Name),
		WithUnlimitedCores(), // §7.1 assumes software that scales with the chip
		WithQuality(q),
	}
	for _, v := range variants {
		org := v.org.WithDefaults()
		cfg := DefaultConfig(NOCOut)
		cfg.NOCOut = org
		cfg.Cores = org.NumCores()
		// A balanced future chip scales off-die bandwidth with cores
		// (otherwise DRAM saturation masks the interconnect story).
		cfg.MemChannels = 4 * cfg.Cores / 64
		opts = append(opts, WithVariant(v.name, cfg))
	}
	rep := mustRun(NewExperiment(opts...))

	out := ScalingResult{Workload: w.Name}
	for _, v := range variants {
		out.Variants = append(out.Variants, v.name)
		out.PerCoreIPC = append(out.PerCoreIPC, rep.MustGet(v.name, w.Name, 0).PerCoreIPC)
	}
	return out
}

// Table renders the result.
func (r ScalingResult) Table() *Table {
	t := &Table{Title: fmt.Sprintf("§7.1: NOC-Out scaling ablation on %s", r.Workload),
		Header: []string{"variant", "per-core IPC"}}
	for i := range r.Variants {
		t.AddRow(r.Variants[i], f3(r.PerCoreIPC[i]))
	}
	return t
}

// Table1 returns the evaluation parameters (Table 1) as a table.
func Table1() *Table {
	cfg := DefaultConfig(NOCOut)
	t := &Table{Title: "Table 1: evaluation parameters", Header: []string{"parameter", "value"}}
	t.AddRow("Technology", "32nm, 0.9V, 2GHz")
	t.AddRow("CMP features", fmt.Sprintf("%d cores, %dMB NUCA LLC, %d DDR3-1667 memory channels",
		cfg.Cores, cfg.LLCMB, cfg.MemChannels))
	t.AddRow("Core", "ARM Cortex-A15-like: 3-way OoO, 64-entry ROB, 16-entry LSQ")
	t.AddRow("L1 caches", "32KB L1-I + 32KB L1-D per core, 64B lines")
	t.AddRow("Mesh", "5 ports, 3 VCs/port, 5 flits/VC, 2-stage speculative pipeline, 1-cycle links")
	t.AddRow("Flattened Butterfly", "15 ports, 3 VCs/port, 3-stage pipeline, links up to 2 tiles/cycle")
	t.AddRow("NOC-Out", "reduction/dispersion trees: 2 ports, 2 VCs/port, 1 cycle/hop; LLC: 1-D flattened butterfly")
	t.AddRow("Link width", fmt.Sprintf("%d bits", cfg.LinkBits))
	return t
}
