package nocout

import (
	"bytes"
	"context"
	"testing"

	"nocout/internal/chip"
)

// This file benchmarks the warm-state checkpoint subsystem: the cost and
// size of one snapshot, the cost of one restore, and the end-to-end
// measurement with a cold vs warm checkpoint cache. CI archives the
// results as BENCH_checkpoint.json so the subsystem's perf trajectory —
// and the warmup cycles a cache hit saves — is tracked PR over PR.

// benchWarmChip builds and warms the benchmark system: a Quick-quality
// 16-core mesh on Web Search.
func benchWarmChip(b *testing.B) (Config, *chip.Chip) {
	b.Helper()
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	w, err := ParseWorkload("Web Search")
	if err != nil {
		b.Fatal(err)
	}
	return cfg, warmChip(cfg, w, 1, Quick.Warmup)
}

// BenchmarkCheckpointSnapshot prices one full-chip snapshot; ckpt-bytes
// is the container size the store writes per prefix.
func BenchmarkCheckpointSnapshot(b *testing.B) {
	_, c := benchWarmChip(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := c.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "ckpt-bytes")
}

// BenchmarkCheckpointRestore prices one restore — parse, rebuild the
// chip, load every section — which replaces an entire warmup on a cache
// hit; warmup-cycles-replaced is what each restore avoids simulating.
func BenchmarkCheckpointRestore(b *testing.B) {
	cfg, c := benchWarmChip(b)
	w, err := ParseWorkload("Web Search")
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chip.Restore(cfg, w, 1, bytes.NewReader(snap)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(Quick.Warmup), "warmup-cycles-replaced")
}

// benchCheckpointSweep measures the one-point Quick sweep through rn,
// reporting ns/op for the whole measurement.
func benchCheckpointSweep(b *testing.B, rn *Runner) {
	cfg := DefaultConfig(Mesh)
	cfg.Cores = 16
	exp := NewExperiment(
		WithTitle("checkpoint bench"),
		WithWorkloads("Web Search"),
		WithQuality(Quick),
		WithVariant("Mesh", cfg),
	)
	sw, err := exp.Sweep()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Run(context.Background(), sw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointSweepPlain is the baseline: warmup simulated on
// every measurement.
func BenchmarkCheckpointSweepPlain(b *testing.B) {
	benchCheckpointSweep(b, &Runner{})
}

// BenchmarkCheckpointSweepWarm measures through a pre-populated cache:
// every iteration restores instead of warming, so the difference from
// Plain is the warmup time a hit saves (minus the restore cost above).
func BenchmarkCheckpointSweepWarm(b *testing.B) {
	st, err := NewCheckpointStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rn := &Runner{Checkpoints: st}
	// Populate the cache outside the timed region.
	benchCheckpointSweep(b, rn)
	hitsBefore, _, _ := st.Stats()
	benchCheckpointSweep(b, rn)
	hits, misses, _ := st.Stats()
	if hits-hitsBefore < int64(b.N) {
		b.Fatalf("warm pass hit %d of %d iterations (misses %d)", hits-hitsBefore, b.N, misses)
	}
	b.ReportMetric(float64(Quick.Warmup), "warmup-cycles-saved/op")
}
