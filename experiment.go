package nocout

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"

	"nocout/internal/workload"
)

// This file defines the declarative half of the experiment engine: an
// Experiment is a sweep *specification* — variants (named configurations)
// crossed with workloads and core counts — built with functional options
// and expanded into a Sweep of fully resolved Points. The Runner
// (runner.go) executes a Sweep; the Report (report.go) holds the results.
// Every Figure*/-Study/-Ablation entry point in experiments.go is a thin
// spec over this engine, and user studies are meant to be the same.

// Variant is a named configuration inside a sweep, e.g. a design at its
// Table 1 defaults, or an ablation point ("4 banks/tile").
type Variant struct {
	Name   string
	Config Config
}

// Point is one cell of a sweep's cartesian product: a variant measured
// under one workload at one core count, with a fully resolved Config.
type Point struct {
	Variant  string `json:"variant"`
	Design   Design `json:"design"`
	Workload string `json:"workload"`
	// Hierarchy is the point's memory hierarchy (omitted for the
	// SharedNUCA baseline, so pre-hierarchy reports round-trip).
	Hierarchy HierarchyID `json:"hierarchy,omitempty"`
	// Cores is the requested core count; 0 means the variant's own (the
	// resolved value is Config.Cores).
	Cores int    `json:"requested_cores,omitempty"`
	Seed  uint64 `json:"seed"`
	// Config is the resolved configuration the point runs; it is part of
	// the JSON encoding so a report fully reproduces its runs.
	Config Config `json:"config"`
	// WorkloadSpec records the parse spec the workload came from when it
	// is not just the name — today the "trace:<path>" capture scheme —
	// so a campaign worker in another process can rehydrate the point.
	WorkloadSpec string `json:"workload_spec,omitempty"`
	// Unlimited records WithUnlimitedCores, so a rehydrated point
	// re-applies the software-scalability cap lift (it changes behaviour,
	// so it is part of the point's cache identity).
	Unlimited bool `json:"unlimited,omitempty"`

	wl workload.Workload
}

// dedupKey identifies the point within its sweep; expansion dedups on it.
// The content-addressed identity the campaign cache uses is Point.Key
// (identity.go), which hashes the full resolved configuration instead.
func (p Point) dedupKey() string {
	return fmt.Sprintf("%s|%s|%d|%d", p.Variant, p.Workload, p.Cores, p.Hierarchy)
}

// String describes the point for progress displays.
func (p Point) String() string {
	return fmt.Sprintf("%s / %s / %d cores", p.Variant, p.Workload, p.Config.Cores)
}

// Sweep is a fully expanded experiment: the list of points to measure and
// the effort to measure them at.
type Sweep struct {
	Title   string
	Quality Quality
	Points  []Point

	// SimDomains shards each point's simulation across this many
	// concurrently stepping tile-group domains (chip.NewSharded);
	// <= 1 runs the classic single-goroutine kernel. It is an execution
	// knob, not part of the sweep's identity: results are bit-identical
	// for any value, so it is deliberately excluded from Point.Key and
	// campaign manifests — a cached result is valid at any parallelism.
	SimDomains int
}

// Len returns the number of points.
func (s Sweep) Len() int { return len(s.Points) }

// Experiment is a declarative sweep specification. Build one with
// NewExperiment and functional options, then Run it (or Sweep it and hand
// the result to a custom Runner):
//
//	rep, err := nocout.NewExperiment(
//		nocout.WithDesigns(nocout.Mesh, nocout.NOCOut),
//		nocout.WithWorkloads("Data Serving"),
//		nocout.WithCoreCounts(16, 32, 64),
//		nocout.WithQuality(nocout.Quick),
//	).Run(ctx)
type Experiment struct {
	title        string
	variants     []Variant
	workloads    []string
	workloadVals []workload.Workload
	coreCounts   []int
	hierarchies  []HierarchyID
	offeredLoads []float64
	quality      Quality
	seed         *uint64
	unlimited    bool
	simDomains   int
	configure    func(*Config, Point)
	ckptDir      string
}

// Option configures an Experiment.
type Option func(*Experiment)

// NewExperiment builds a sweep specification. Defaults: Quick quality,
// the full six-workload suite, each variant's own core count and seed.
func NewExperiment(opts ...Option) *Experiment {
	e := &Experiment{quality: Quick}
	for _, o := range opts {
		o(e)
	}
	return e
}

// WithTitle names the experiment; the title heads its Report.
func WithTitle(title string) Option {
	return func(e *Experiment) { e.title = title }
}

// WithDesigns adds one variant per design at its Table 1 defaults, named
// by the design's figure name.
func WithDesigns(ds ...Design) Option {
	return func(e *Experiment) {
		for _, d := range ds {
			e.variants = append(e.variants, Variant{Name: d.String(), Config: DefaultConfig(d)})
		}
	}
}

// WithVariant adds one named configuration, for sweeps over something
// other than the stock designs (link widths, banking, NOC-Out shapes).
func WithVariant(name string, cfg Config) Option {
	return func(e *Experiment) {
		e.variants = append(e.variants, Variant{Name: name, Config: cfg})
	}
}

// WithWorkloads restricts the sweep to the named workloads: any
// registered name or alias (case-insensitive), or a recorded capture
// via "trace:<path>". Default: every registered workload in
// registration order.
func WithWorkloads(names ...string) Option {
	return func(e *Experiment) { e.workloads = append(e.workloads, names...) }
}

// WithWorkloadValues adds constructed Workload values — an unregistered
// Mix, a loaded Capture, a user implementation — to the sweep after any
// named ones.
func WithWorkloadValues(ws ...Workload) Option {
	return func(e *Experiment) { e.workloadVals = append(e.workloadVals, ws...) }
}

// WithOfferedLoads crosses the sweep with open-system arrival rates
// (requests per 1000 cycles per core): every workload in the sweep is
// re-derived at each load through the RateScaled contract. Every
// workload must therefore be open-system (the "opensys:" family or a
// user RateScaled implementation) — mixing in a closed-loop workload is
// a hard error at expansion, not a silently flat curve. Derived points
// are named by their canonical spec, so the rate is part of the sweep
// cell and of the campaign cache identity.
func WithOfferedLoads(loads ...float64) Option {
	return func(e *Experiment) { e.offeredLoads = append(e.offeredLoads, loads...) }
}

// WithCoreCounts crosses the sweep with chip core counts. Default: each
// variant's own configured core count.
func WithCoreCounts(ns ...int) Option {
	return func(e *Experiment) { e.coreCounts = append(e.coreCounts, ns...) }
}

// WithHierarchies crosses the sweep with memory hierarchies: every
// variant runs once per hierarchy, with the hierarchy's DefaultConfig
// tuning applied on top of the variant's. With more than one hierarchy
// the variant names gain a "/<hierarchy>" suffix so report cells stay
// addressable; a single hierarchy rewrites the variants in place.
// Default: each variant's own configured hierarchy (SharedNUCA unless the
// variant's Config says otherwise).
func WithHierarchies(hs ...HierarchyID) Option {
	return func(e *Experiment) { e.hierarchies = append(e.hierarchies, hs...) }
}

// WithSimParallelism shards every simulation of the experiment across n
// concurrently stepping tile-group domains (the conservative parallel
// kernel). Results are bit-identical for any n; only wall-clock time
// changes. The Runner arbitrates n against its worker pool so workers ×
// domains never oversubscribes GOMAXPROCS. n <= 1 keeps the
// single-goroutine kernel.
func WithSimParallelism(n int) Option {
	return func(e *Experiment) { e.simDomains = n }
}

// WithCheckpoints caches warm state in the checkpoint store at dir:
// points sharing a measurement prefix (same system, seed, workload, and
// warmup — see Point.PrefixKey) run warmup once, snapshot, and restore
// everywhere else, bit-identically. The Report is byte-identical with or
// without the cache; only wall-clock time changes. Multi-window sweeps
// and re-runs of the same experiment are the big winners.
func WithCheckpoints(dir string) Option {
	return func(e *Experiment) { e.ckptDir = dir }
}

// WithQuality sets the simulation effort (default Quick).
func WithQuality(q Quality) Option {
	return func(e *Experiment) { e.quality = q }
}

// WithSeed overrides every variant's base seed (any value, 0 included).
func WithSeed(s uint64) Option {
	return func(e *Experiment) { e.seed = &s }
}

// WithUnlimitedCores lifts each workload's software scalability cap to
// the chip's core count, for §7.1-style studies that assume software able
// to use every core.
func WithUnlimitedCores() Option {
	return func(e *Experiment) { e.unlimited = true }
}

// WithConfigure installs a hook that may adjust each point's Config after
// expansion — e.g. shaping the NOC-Out organization or scaling memory
// channels with the core count. The hook sees the point's identity
// (variant, workload, cores) and mutates the config in place.
func WithConfigure(f func(cfg *Config, p Point)) Option {
	return func(e *Experiment) { e.configure = f }
}

// Sweep expands the specification into the cartesian product of
// variants × workloads × core counts, resolving workload names, applying
// the configure hook, and dropping duplicate points.
func (e *Experiment) Sweep() (Sweep, error) {
	if len(e.variants) == 0 {
		return Sweep{}, fmt.Errorf("nocout: experiment has no variants; use WithDesigns or WithVariant")
	}
	variants, err := e.expandHierarchies()
	if err != nil {
		return Sweep{}, err
	}
	names := e.workloads
	if len(names) == 0 && len(e.workloadVals) == 0 {
		names = Workloads()
	}
	wls := make([]workload.Workload, 0, len(names)+len(e.workloadVals))
	// Points are keyed by workload *name*, so two distinct workloads
	// sharing one name would silently collapse to whichever expands
	// first — easy to hit since a capture replays under its source's
	// name. Equal spellings of the same workload dedup; genuinely
	// different sources with one name are a hard error.
	byName := map[string]workload.Workload{}
	add := func(w workload.Workload) error {
		prev, seen := byName[w.Name()]
		if !seen {
			byName[w.Name()] = w
			wls = append(wls, w)
			return nil
		}
		if !sameWorkload(prev, w) {
			return fmt.Errorf("nocout: two different workloads named %q in one sweep; record or register under a distinct name", w.Name())
		}
		return nil
	}
	// specOf remembers the parse spec behind non-name workloads (trace
	// captures), keyed by resolved name; points carry it so campaign
	// workers in other processes can rehydrate them.
	specOf := map[string]string{}
	for _, n := range names {
		w, err := workload.Parse(n)
		if err != nil {
			return Sweep{}, err
		}
		if err := add(w); err != nil {
			return Sweep{}, err
		}
		if traceSpec(n) {
			specOf[w.Name()] = strings.TrimSpace(n)
		}
	}
	for _, w := range e.workloadVals {
		if err := add(w); err != nil {
			return Sweep{}, err
		}
	}
	if len(e.offeredLoads) > 0 {
		expanded := make([]workload.Workload, 0, len(wls)*len(e.offeredLoads))
		for _, w := range wls {
			rs, ok := workload.RateScaledOf(w)
			if !ok {
				return Sweep{}, fmt.Errorf("nocout: WithOfferedLoads needs open-system workloads; %q is closed-loop (wrap it in an opensys: spec)", w.Name())
			}
			for _, load := range e.offeredLoads {
				if load <= 0 || math.IsNaN(load) || math.IsInf(load, 0) {
					return Sweep{}, fmt.Errorf("nocout: offered load %v must be a positive finite requests/kcycle", load)
				}
				expanded = append(expanded, rs.WithOfferedLoad(load))
			}
		}
		wls = expanded
	}
	counts := e.coreCounts
	if len(counts) == 0 {
		counts = []int{0}
	}

	sw := Sweep{Title: e.title, Quality: e.quality, SimDomains: e.simDomains}
	seen := make(map[string]bool)
	for _, v := range variants {
		for _, w := range wls {
			for _, n := range counts {
				cfg := v.Config
				if n > 0 {
					cfg.Cores = n
				}
				if e.seed != nil {
					cfg.Seed = *e.seed
				}
				p := Point{
					Variant:  v.Name,
					Design:   cfg.Design,
					Workload: w.Name(),
					Cores:    n,
				}
				if e.configure != nil {
					e.configure(&cfg, p)
				}
				wl := w
				if e.unlimited {
					wl = workload.Unlimited(w)
				}
				p.Seed = cfg.Seed
				p.Config = cfg
				p.Hierarchy = cfg.Hierarchy
				p.WorkloadSpec = specOf[w.Name()]
				p.Unlimited = e.unlimited
				p.wl = wl
				if seen[p.dedupKey()] {
					continue
				}
				seen[p.dedupKey()] = true
				sw.Points = append(sw.Points, p)
			}
		}
	}
	return sw, nil
}

// expandHierarchies crosses the variant list with WithHierarchies'
// hierarchy dimension (a no-op without one), resolving each hierarchy
// through the registry so unknown handles fail before any simulation.
func (e *Experiment) expandHierarchies() ([]Variant, error) {
	if len(e.hierarchies) == 0 {
		return e.variants, nil
	}
	out := make([]Variant, 0, len(e.variants)*len(e.hierarchies))
	for _, v := range e.variants {
		for _, h := range e.hierarchies {
			hier, err := HierarchyOf(h)
			if err != nil {
				return nil, err
			}
			cfg := hier.DefaultConfig(v.Config)
			cfg.Hierarchy = h
			name := v.Name
			if len(e.hierarchies) > 1 {
				name = v.Name + "/" + hier.Name()
			}
			out = append(out, Variant{Name: name, Config: cfg})
		}
	}
	return out, nil
}

// sameWorkload reports whether two equally-named workloads are the same
// source. Synthetics compare on their calibration block alone — alias
// metadata doesn't change behaviour, and a registered synthetic must
// dedup against a freshly wrapped copy of the same Params.
func sameWorkload(a, b workload.Workload) bool {
	if sa, ok := a.(workload.Synthetic); ok {
		if sb, ok := b.(workload.Synthetic); ok {
			return sa.P == sb.P
		}
	}
	return reflect.DeepEqual(a, b)
}

// Run expands the experiment and executes it with a default Runner.
func (e *Experiment) Run(ctx context.Context) (*Report, error) {
	sw, err := e.Sweep()
	if err != nil {
		return nil, err
	}
	rn := &Runner{}
	if e.ckptDir != "" {
		st, err := NewCheckpointStore(e.ckptDir)
		if err != nil {
			return nil, err
		}
		rn.Checkpoints = st
	}
	return rn.Run(ctx, sw)
}
