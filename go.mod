module nocout

go 1.24
