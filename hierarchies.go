package nocout

import (
	"fmt"

	"nocout/internal/chip"
	"nocout/internal/noc"
	"nocout/internal/workload"
)

// This file extends the memory-hierarchy space beyond the paper's shared
// NUCA baseline, registered through the same public RegisterHierarchy
// path a user hierarchy takes (EXPERIMENTS.md walks through xorHier as
// the worked example):
//
//   - SharedNUCA-XOR: the shared LLC with an XOR-folded home hash instead
//     of line-modulo striping, so power-of-two strides (per-core regions,
//     page-aligned structures) stop aliasing onto a few banks.
//   - SharedNUCA-Affine: region-affine placement — each core's dataset
//     window homes on that core's own bank, so the dominant private
//     traffic stays local while shared regions keep the modulo stripe.
//   - PrivateLLC: per-tile private LLC slices for each core's dataset,
//     with the directory state for shared lines migrated to banks
//     co-located with the memory controllers.
//   - Clustered: the tiles form LLC clusters that share capacity among
//     themselves; a core's dataset interleaves across its own cluster's
//     banks, and shared lines spill to the memory-side directory.

// The extended hierarchies' handles, minted at package init in this order
// (after the builtin SharedNUCA, which is handle 0).
var (
	XORPlacement = mustRegisterHierarchy(xorHier{})
	RegionAffine = mustRegisterHierarchy(affineHier{})
	PrivateLLC   = mustRegisterHierarchy(privateHier{})
	Clustered    = mustRegisterHierarchy(clusteredHier{})
)

func mustRegisterHierarchy(h Hierarchy) HierarchyID {
	id, err := RegisterHierarchy(h)
	if err != nil {
		panic(err)
	}
	return id
}

// xorFold spreads a line address for home-bank selection. It folds
// different bit positions than the cache set-index hash and the memory
// ChannelHash so the three mappings stay decorrelated.
func xorFold(line uint64) uint64 {
	return line ^ line>>7 ^ line>>16 ^ line>>24 ^ line>>31
}

// sharedBankConf is the uniform bank configuration of a hierarchy that
// keeps the fabric's bank endpoints but homes lines non-contiguously:
// no compaction is set, so every line is accepted as-is and the hashed
// set index does the spreading the modulo compaction used to.
func sharedBankConf(cfg Config, nBanks int) (BankConfig, error) {
	return chip.BankConfigFor(cfg, cfg.LLCMB<<20/nBanks)
}

// --- SharedNUCA-XOR ---------------------------------------------------------

// xorHier is the shared NUCA with XOR-hashed home placement: same banks,
// same capacity, different bank = f(line). It works on every
// organization, NOC-Out's segregated LLC included.
type xorHier struct{}

func (xorHier) Name() string                     { return "SharedNUCA-XOR" }
func (xorHier) Aliases() []string                { return []string{"xor", "nuca-xor", "xor-placement"} }
func (xorHier) DefaultConfig(base Config) Config { return base }

func (xorHier) Build(cfg Config, fab *Fabric, _ workload.Layout) (*MemoryLayout, error) {
	nBanks := fab.NumBanks
	bcfg, err := sharedBankConf(cfg, nBanks)
	if err != nil {
		return nil, err
	}
	return &MemoryLayout{
		NumBanks: nBanks,
		BankNode: fab.BankNode,
		BankConf: func(int) BankConfig { return bcfg },
		L1Conf:   chip.L1ConfigFor(cfg),
		MemConf:  cfg.Mem,
		Home: func(line uint64) (noc.NodeID, int) {
			bank := int(xorFold(line) % uint64(nBanks))
			return fab.BankNode(bank), bank
		},
		ChannelOf: func(line uint64) int { return chip.ChannelHash(line, cfg.MemChannels) },
	}, nil
}

func (xorHier) Physical(cfg Config) HierPhysical {
	return chip.LLCPhysicalFor(cfg, chip.FabricBanks(cfg))
}

// --- SharedNUCA-Affine ------------------------------------------------------

// affineHier keeps the shared LLC's banks and capacity but homes each
// core's dataset window on that core's own bank (bank index = owner core,
// wrapped onto the fabric's bank count); lines outside any window — the
// shared instruction and hot regions included — keep the baseline modulo
// stripe. On tiled fabrics the owner's bank is the owner's tile, so the
// dominant private-data traffic never leaves it.
type affineHier struct{}

func (affineHier) Name() string { return "SharedNUCA-Affine" }
func (affineHier) Aliases() []string {
	return []string{"affine", "region-affine", "nuca-affine"}
}
func (affineHier) DefaultConfig(base Config) Config { return base }

func (affineHier) Build(cfg Config, fab *Fabric, lay workload.Layout) (*MemoryLayout, error) {
	nBanks := fab.NumBanks
	bcfg, err := sharedBankConf(cfg, nBanks)
	if err != nil {
		return nil, err
	}
	owner := chip.RegionOwner(cfg.Cores, lay)
	return &MemoryLayout{
		NumBanks: nBanks,
		BankNode: fab.BankNode,
		BankConf: func(int) BankConfig { return bcfg },
		L1Conf:   chip.L1ConfigFor(cfg),
		MemConf:  cfg.Mem,
		Home: func(line uint64) (noc.NodeID, int) {
			bank := int(line % uint64(nBanks))
			if c, ok := owner(line); ok {
				bank = c % nBanks
			}
			return fab.BankNode(bank), bank
		},
		ChannelOf: func(line uint64) int { return chip.ChannelHash(line, cfg.MemChannels) },
	}, nil
}

func (affineHier) Physical(cfg Config) HierPhysical {
	return chip.LLCPhysicalFor(cfg, chip.FabricBanks(cfg))
}

// --- PrivateLLC -------------------------------------------------------------

// privateHier gives every core a private per-tile LLC slice for its own
// dataset and migrates the directory for shared lines to banks co-located
// with the memory controllers: half the LLC capacity splits across the
// per-tile slices, half across the memory-side shared banks. Private
// fills and writebacks stay on the requester's tile; shared lines resolve
// at the memory side, one hop from DRAM. Requires a tiled organization
// (one bank endpoint per core and no segregated LLC row).
type privateHier struct{}

func (privateHier) Name() string                     { return "PrivateLLC" }
func (privateHier) Aliases() []string                { return []string{"private", "private-llc"} }
func (privateHier) DefaultConfig(base Config) Config { return base }

func (privateHier) Build(cfg Config, fab *Fabric, lay workload.Layout) (*MemoryLayout, error) {
	return buildClustered(cfg, fab, lay, 1, "PrivateLLC")
}

func (privateHier) Physical(cfg Config) HierPhysical {
	return chip.LLCPhysicalFor(cfg, cfg.Cores+cfg.MemChannels)
}

// --- Clustered --------------------------------------------------------------

// clusteredHier groups tiles into LLC clusters that pool their slices: a
// core's dataset interleaves across the banks of its own cluster (bounded
// distance, shared capacity within the cluster), and shared lines spill
// to the memory-side directory banks exactly as in PrivateLLC — of which
// this is the K-tile generalization. Config.LLCClusterTiles sets the
// cluster size (default 4).
type clusteredHier struct{}

func (clusteredHier) Name() string      { return "Clustered" }
func (clusteredHier) Aliases() []string { return []string{"cluster", "clustered-llc"} }

func (clusteredHier) DefaultConfig(base Config) Config {
	if base.LLCClusterTiles == 0 {
		base.LLCClusterTiles = 4
	}
	return base
}

func (clusteredHier) Build(cfg Config, fab *Fabric, lay workload.Layout) (*MemoryLayout, error) {
	k := cfg.LLCClusterTiles
	if k <= 0 {
		k = 4
	}
	if k > cfg.Cores {
		k = cfg.Cores
	}
	return buildClustered(cfg, fab, lay, k, "Clustered")
}

func (clusteredHier) Physical(cfg Config) HierPhysical {
	return chip.LLCPhysicalFor(cfg, cfg.Cores+cfg.MemChannels)
}

// buildClustered is the shared construction behind PrivateLLC (cluster
// size 1) and Clustered (cluster size k): per-tile slices pooled within
// k-tile clusters for region-owned lines, plus memory-side directory
// banks for everything else.
func buildClustered(cfg Config, fab *Fabric, lay workload.Layout, k int, name string) (*MemoryLayout, error) {
	cores, channels := cfg.Cores, cfg.MemChannels
	if fab.NocNet != nil || fab.NumBanks != cores {
		return nil, fmt.Errorf("nocout: the %s hierarchy requires a tiled organization (one bank endpoint per core); %v is not one",
			name, cfg.Design)
	}
	tileConf, err := chip.BankConfigFor(cfg, cfg.LLCMB<<20/2/cores)
	if err != nil {
		return nil, fmt.Errorf("%s per-tile slice: %w", name, err)
	}
	memConf, err := chip.BankConfigFor(cfg, cfg.LLCMB<<20/2/channels)
	if err != nil {
		return nil, fmt.Errorf("%s memory-side bank: %w", name, err)
	}

	owner := chip.RegionOwner(cores, lay)
	// homeBank is a pure function of the line: region-owned lines
	// interleave across the owner's cluster, everything else lands on a
	// memory-side directory bank (indices cores..cores+channels-1).
	homeBank := func(line uint64) int {
		if c, ok := owner(line); ok {
			start := c / k * k
			size := k
			if start+size > cores {
				size = cores - start
			}
			return start + int(line%uint64(size))
		}
		return cores + chip.ChannelHash(line, channels)
	}
	bankNode := func(b int) noc.NodeID {
		if b < cores {
			return fab.CoreNode(b)
		}
		return fab.MCNodes[b-cores]
	}
	return &MemoryLayout{
		NumBanks: cores + channels,
		BankNode: bankNode,
		BankConf: func(b int) BankConfig {
			if b < cores {
				return tileConf
			}
			return memConf
		},
		L1Conf:  chip.L1ConfigFor(cfg),
		MemConf: cfg.Mem,
		Home: func(line uint64) (noc.NodeID, int) {
			b := homeBank(line)
			return bankNode(b), b
		},
		ChannelOf: func(line uint64) int {
			// Lines homed on a memory-side bank drain to that bank's own
			// channel (same node, zero extra hops); cluster-owned lines
			// keep the hashed interleave.
			if b := homeBank(line); b >= cores {
				return b - cores
			}
			return chip.ChannelHash(line, channels)
		},
	}, nil
}
